package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/model"
)

// Options configures a Service.
type Options struct {
	// Shards is the number of stripes the service's state is split
	// into. Each stripe owns one slice of the verdict memo, in-flight
	// table and delta-seed pool behind a short-held mutex, plus one set
	// of resident analysis engines behind a long-held one; queries are
	// routed by system fingerprint, so one fingerprint touches exactly
	// one stripe — repeated queries on the same system land on the same
	// warm engine while distinct systems spread across stripes and run
	// concurrently. 0 selects runtime.GOMAXPROCS(0).
	Shards int

	// Capacity bounds the verdict memo in entries (whole detached
	// Results), divided evenly across stripes. 0 selects 4096; a
	// negative value disables memoisation entirely (every query runs an
	// analysis) while keeping the engine pool and in-flight
	// deduplication.
	Capacity int

	// Analysis is the default analysis configuration used by Analyze
	// and AnalyzeStatic; AnalyzeOptions overrides it per query.
	Analysis analysis.Options

	// DeltaWindow bounds the pool of recent results the service keeps
	// as incremental-analysis seeds, divided evenly across stripes: on
	// a memo miss the incoming system is diffed against the pool (by
	// per-transaction fingerprint overlap) and a near-match routes the
	// query through Engine.AnalyzeFrom, which replays the unchanged
	// transactions' state instead of recomputing it — the fast path for
	// admission-control traffic that mutates one transaction at a
	// time. 0 selects 4 × shards; a negative value disables the delta
	// path entirely.
	DeltaWindow int

	// InternCapacity bounds the fingerprint-keyed intern pool of
	// canonical resident systems (see Intern) in entries, divided
	// evenly across stripes. 0 selects 4096; a negative value disables
	// interning (Intern returns its argument unchanged).
	InternCapacity int
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) capacity() int {
	switch {
	case o.Capacity < 0:
		return 0
	case o.Capacity == 0:
		return 4096
	default:
		return o.Capacity
	}
}

func (o Options) deltaWindow() int {
	switch {
	case o.DeltaWindow < 0:
		return 0
	case o.DeltaWindow == 0:
		return 4 * o.shards()
	default:
		return o.DeltaWindow
	}
}

func (o Options) internCapacity() int {
	switch {
	case o.InternCapacity < 0:
		return 0
	case o.InternCapacity == 0:
		return 4096
	default:
		return o.InternCapacity
	}
}

// perStripe divides a total capacity over n stripes, rounding up so a
// positive total stays positive on every stripe (the bound becomes
// "at most ceil(total/n) per stripe", i.e. total rounded up to a
// multiple of n overall). Zero stays zero: disabled is disabled.
func perStripe(total, n int) int {
	if total <= 0 {
		return 0
	}
	return (total + n - 1) / n
}

// Stats is a snapshot of the service's counters. Every query is
// counted exactly once as either a hit (served from the memo, or from
// a concurrent duplicate's in-flight analysis) or a miss (it ran an
// analysis), so Hits + Misses == Queries at quiescence; Misses is the
// number of analyses the engines actually executed.
//
// The json tags are a stable wire contract: /v1/stats (internal/httpd)
// and `hsched bench -json` emit these lowercase names, and clients
// (bench -remote, dashboards) parse them — renaming one is a breaking
// API change, not a refactor.
type Stats struct {
	// Queries is the total number of Analyze* calls accepted.
	Queries int64 `json:"queries"`
	// Hits counts queries answered without running an analysis.
	Hits int64 `json:"hits"`
	// Misses counts queries that ran (or errored in) an analysis.
	Misses int64 `json:"misses"`
	// Evictions counts memo entries displaced by the LRU policy.
	Evictions int64 `json:"evictions"`
	// InflightDedups counts the subset of Hits that were answered by
	// waiting on a concurrent identical query instead of the memo.
	InflightDedups int64 `json:"inflight_dedups"`
	// DeltaHits counts the subset of Misses whose analysis ran
	// incrementally, seeded by a resident near-match — same result
	// bits, a fraction of the work.
	DeltaHits int64 `json:"delta_hits"`
	// RoundsSaved accumulates the per-task response-time computations
	// the delta hits skipped by replaying unchanged transactions
	// (analysis.DeltaInfo.TaskRoundsSaved summed over all delta hits)
	// — the service-level measure of how much fixed-point work the
	// incremental path avoided.
	RoundsSaved int64 `json:"rounds_saved"`
	// ScenariosPruned accumulates the exact scenario vectors the
	// analyses this service executed skipped via the admissible sweep
	// prune (analysis.Result.ScenariosPruned summed over all misses) —
	// the branch-and-bound counterpart of RoundsSaved for the cold
	// exact path. Always 0 for purely approximate traffic.
	ScenariosPruned int64 `json:"scenarios_pruned"`
	// SubtreesPruned accumulates the whole cursor subtrees the exact
	// sweeps refuted with a single prefix bound instead of per-scenario
	// checks (analysis.Result.SubtreesPruned summed over all misses).
	// ScenariosPruned/SubtreesPruned is the average refuted-subtree
	// size — the depth the branch-and-bound bounds cut at. Always 0
	// for purely approximate traffic.
	SubtreesPruned int64 `json:"subtrees_pruned"`
	// InternHits counts Intern/Interned calls answered by an existing
	// resident system — each one a decoded copy that collapsed onto
	// the canonical pointer (and, on the binary HTTP path, a request
	// that needed zero decoding).
	InternHits int64 `json:"intern_hits"`
	// InternMisses counts Intern calls that installed their argument
	// as a new resident.
	InternMisses int64 `json:"intern_misses"`
	// Resident is a gauge (not a counter): the number of distinct
	// systems currently resident in the intern pool. A workload of any
	// number of duplicate posts of one system holds it at 1.
	Resident int64 `json:"intern_resident"`
}

// HitRate returns Hits/Queries, or 0 before the first query.
func (st Stats) HitRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Queries)
}

// counter is a cache-line-padded atomic counter. The padding keeps
// adjacent counters out of each other's cache line, so two cores
// bumping different counters never ping-pong a line between them —
// stats accounting takes no lock and causes no false sharing.
type counter struct {
	atomic.Int64
	_ [56]byte // 8 (Int64) + 56 = 64, one cache line per counter
}

// counters is the service's live tally, one padded atomic per Stats
// field (intern counters live in internPool).
//
// Counting protocol: each query increments exactly one attribution
// counter — hits (memo hit or in-flight dedup, the latter also bumping
// inflightDedups) or misses (it became an analysis leader, or is a
// recorder bypass) — at the point its outcome is decided, and then
// increments queries. A dedup waiter whose leader is cancelled loops
// back uncounted and is attributed at its eventual resolution, so the
// exactly-once guarantee needs no per-call flag. Because attribution
// always precedes the queries bump and Stats loads queries first, a
// concurrent snapshot satisfies Hits + Misses ≥ Queries at every
// instant, with equality at quiescence.
type counters struct {
	queries         counter
	hits            counter
	misses          counter
	evictions       counter
	inflightDedups  counter
	deltaHits       counter
	roundsSaved     counter
	scenariosPruned counter
	subtreesPruned  counter
}

// optKey is the comparable form of normalised analysis options used in
// cache keys: analysis.ReplayKey — the package's single enumeration of
// semantics-affecting option fields, so a future field is respected
// here automatically — plus the static bit. Workers is absent from
// ReplayKey by construction: results are bit-identical for every
// worker count, so queries differing only in Workers share one memo
// entry. Recorder is likewise absent (recorder queries bypass the
// memo). static distinguishes the one-pass static analysis from the
// holistic iteration — same system, different semantics.
type optKey struct {
	rk     analysis.ReplayKey
	static bool
}

func keyOf(opt analysis.Options, static bool) optKey {
	return optKey{rk: opt.ReplayKey(), static: static}
}

// cacheKey identifies one memoisable verdict: the canonical system
// fingerprint plus the normalised analysis options.
type cacheKey struct {
	fp  model.Fingerprint
	opt optKey
}

// engineKey identifies one resident engine within a stripe. Unlike the
// cache key it includes Workers, because an engine is constructed with
// a fixed worker bound.
type engineKey struct {
	opt     optKey
	workers int
}

// inflight is one in-progress analysis that concurrent identical
// queries wait on instead of re-running it. res and err are written
// before done is closed.
type inflight struct {
	done chan struct{}
	res  *analysis.Result
	err  error
}

// stripe owns one fingerprint slice of every piece of per-system
// service state: the memo, the in-flight table, the delta-seed pool
// and the resident engines. Routing is model.Fingerprint.Shard, so one
// fingerprint touches exactly one stripe and a query acquires at most
// one stripe mutex. Three locks with three very different hold times
// live here deliberately:
//
//   - mu guards the memo and in-flight table — map/list operations
//     only, never held across an analysis, and taken exactly once per
//     memoised query;
//   - engMu guards the resident engines and IS held across an
//     analysis (engines are single-goroutine), so a long cold run
//     never blocks the stripe's hit path;
//   - seedMu guards the stripe's slice of the delta-seed pool, taken
//     only on the miss path (seed scan + store).
type stripe struct {
	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently inserted
	index    map[cacheKey]*list.Element
	inflight map[cacheKey]*inflight

	engMu   sync.Mutex
	engines map[engineKey]*analysis.Engine

	seedMu  sync.Mutex
	seeds   *list.List // of *seedEntry; front = most recent
	seedIdx map[cacheKey]*list.Element

	_ [64]byte // keep neighbouring stripes' mutexes off one cache line
}

// Service is a concurrency-safe front-end over a pool of resident
// analysis engines: the long-running "admission control" shape of the
// ROADMAP. It routes each query to a stripe by system fingerprint,
// memoises detached Results in per-stripe CLOCK-tempered LRUs keyed by
// (fingerprint, normalised options), and deduplicates concurrent
// identical queries singleflight-style so the analysis runs once.
//
// Returned *Results are shared: a memo hit hands the same pointer to
// every caller, so treat them as read-only. Callers that need a
// private mutable copy should run their own analysis.Engine.
//
// The zero value is not usable; construct with New.
type Service struct {
	opt Options

	// stripes is the fingerprint-routed state; capPerStripe and
	// seedWindow are the per-stripe slices of Options.Capacity and
	// Options.DeltaWindow (0 = disabled), fixed at construction.
	stripes      []stripe
	capPerStripe int
	seedWindow   int

	ctr counters

	// seedSeq stamps seed-pool entries with a global insertion order so
	// cross-stripe seed scans can break ties by recency without any
	// shared list.
	seedSeq atomic.Int64

	// intern is the fingerprint-keyed pool of canonical resident
	// systems (nil when disabled); it is striped like the memo and its
	// counters are merged into Stats snapshots.
	intern *internPool
}

type entry struct {
	key cacheKey
	res *analysis.Result
	// cost is the measured wall time of the analysis that produced
	// res — the recomputation price the eviction policy protects.
	cost time.Duration
	// touched is the CLOCK bit: a memo hit sets it (lock-free, after
	// releasing the stripe mutex) instead of moving the entry, so hits
	// never mutate the list; the evictor clears it and grants a second
	// chance. It is the only entry field written outside the stripe
	// mutex.
	touched atomic.Bool
}

// seedEntry is one delta-seed candidate: a recent result plus the
// precomputed per-transaction fingerprints its matching runs on. seq
// is the Service-wide recency stamp (seedSeq); res, txFPs and seq are
// guarded by the owning stripe's seedMu.
type seedEntry struct {
	key   cacheKey
	txFPs []model.Fingerprint
	res   *analysis.Result
	seq   int64
}

// New constructs a Service with the given options.
func New(opt Options) *Service {
	n := opt.shards()
	s := &Service{
		opt:          opt,
		stripes:      make([]stripe, n),
		capPerStripe: perStripe(opt.capacity(), n),
		seedWindow:   perStripe(opt.deltaWindow(), n),
		intern:       newInternPool(opt.internCapacity(), n),
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.lru = list.New()
		st.index = make(map[cacheKey]*list.Element)
		st.inflight = make(map[cacheKey]*inflight)
		st.engines = make(map[engineKey]*analysis.Engine)
		st.seeds = list.New()
		st.seedIdx = make(map[cacheKey]*list.Element)
	}
	return s
}

func (s *Service) stripeFor(fp model.Fingerprint) *stripe {
	return &s.stripes[fp.Shard(len(s.stripes))]
}

// Analyze runs (or recalls) the holistic dynamic-offset analysis of
// sys under the service's default options. It is safe for concurrent
// use; ctx cancels the underlying analysis promptly.
func (s *Service) Analyze(ctx context.Context, sys *model.System) (*analysis.Result, error) {
	return s.analyze(ctx, sys, s.opt.Analysis, false, nil)
}

// AnalyzeOptions is Analyze with per-query analysis options.
func (s *Service) AnalyzeOptions(ctx context.Context, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return s.analyze(ctx, sys, opt, false, nil)
}

// AnalyzeStatic runs (or recalls) the one-pass static-offset analysis
// of sys under the service's default options.
func (s *Service) AnalyzeStatic(ctx context.Context, sys *model.System) (*analysis.Result, error) {
	return s.analyze(ctx, sys, s.opt.Analysis, true, nil)
}

// AnalyzeStaticOptions is AnalyzeStatic with per-query options.
func (s *Service) AnalyzeStaticOptions(ctx context.Context, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return s.analyze(ctx, sys, opt, true, nil)
}

// AnalyzeFingerprinted is AnalyzeOptions (static selects the one-pass
// static-offset analysis) for callers that already hold the system's
// fingerprint — typically the SHA-256 of its canonical wire bytes —
// and must not pay a second encoding-and-hash pass. fp must equal
// sys.Fingerprint(); an inconsistent pair poisons the verdict memo for
// that fingerprint. The binary HTTP path rides this: hash the request
// body once, look the system up in the intern pool, and analyse, with
// no per-request fingerprint encoding at all.
func (s *Service) AnalyzeFingerprinted(ctx context.Context, fp model.Fingerprint, sys *model.System, opt analysis.Options, static bool) (*analysis.Result, error) {
	return s.analyzeFP(ctx, fp, sys, opt, static, nil)
}

// Stats returns a snapshot of the service counters. Queries is loaded
// first: attribution counters are bumped before queries (see the
// counters doc), so the snapshot never shows a query that has not been
// attributed — Hits + Misses ≥ Queries transiently, == at quiescence.
func (s *Service) Stats() Stats {
	st := Stats{Queries: s.ctr.queries.Load()}
	st.Hits = s.ctr.hits.Load()
	st.Misses = s.ctr.misses.Load()
	st.Evictions = s.ctr.evictions.Load()
	st.InflightDedups = s.ctr.inflightDedups.Load()
	st.DeltaHits = s.ctr.deltaHits.Load()
	st.RoundsSaved = s.ctr.roundsSaved.Load()
	st.ScenariosPruned = s.ctr.scenariosPruned.Load()
	st.SubtreesPruned = s.ctr.subtreesPruned.Load()
	if s.intern != nil {
		st.InternHits, st.InternMisses, st.Resident = s.intern.snapshot()
	}
	return st
}

// Reset drops every memo entry and every resident engine, releasing
// the memory they pin; counters are preserved. In-flight analyses are
// unaffected (their results simply land in the fresh memo). Long-lived
// processes that query the service in bursts over disjoint system
// populations can call it between bursts.
func (s *Service) Reset() {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.lru.Init()
		clear(st.index)
		st.mu.Unlock()
		st.seedMu.Lock()
		st.seeds.Init()
		clear(st.seedIdx)
		st.seedMu.Unlock()
		st.engMu.Lock()
		clear(st.engines)
		st.engMu.Unlock()
	}
	if s.intern != nil {
		s.intern.reset()
	}
}

func (s *Service) analyze(ctx context.Context, sys *model.System, opt analysis.Options, static bool, sess *Session) (*analysis.Result, error) {
	// No up-front Validate: the engine validates on every miss, and an
	// invalid system can never collide with a valid system's
	// fingerprint (the fingerprint covers every field validation
	// reads), so the hit path skips the check — it is the single most
	// expensive part of a memoised query.
	return s.analyzeFP(ctx, sys.Fingerprint(), sys, opt, static, sess)
}

// analyzeFP is the query ladder proper; fp must be sys.Fingerprint(),
// computed by the caller exactly once per request.
func (s *Service) analyzeFP(ctx context.Context, fp model.Fingerprint, sys *model.System, opt analysis.Options, static bool, sess *Session) (*analysis.Result, error) {
	if sess != nil {
		sess.noteProbe()
	}
	if opt.Recorder != nil {
		// Recorder queries want their per-iteration callbacks fired,
		// which a memo hit would silence; they bypass both the memo
		// and the resident engines (an engine is constructed with its
		// recorder baked in).
		s.ctr.misses.Add(1)
		s.ctr.queries.Add(1)
		res, err := s.runFresh(ctx, sys, opt, static)
		if sess != nil {
			sess.noteExecuted(res)
		}
		if err == nil {
			if res.ScenariosPruned > 0 {
				s.ctr.scenariosPruned.Add(res.ScenariosPruned)
			}
			if res.SubtreesPruned > 0 {
				s.ctr.subtreesPruned.Add(res.SubtreesPruned)
			}
		}
		return res, err
	}

	key := cacheKey{fp: fp, opt: keyOf(opt, static)}
	st := s.stripeFor(fp)
	for {
		// The memoised hit path: one stripe-mutex acquisition, held for
		// a map lookup and a pointer read only. res must be read under
		// the lock (insert may refresh e.res); the CLOCK touch and all
		// counting are lock-free and happen after release.
		st.mu.Lock()
		if el, ok := st.index[key]; ok {
			e := el.Value.(*entry)
			res := e.res
			st.mu.Unlock()
			e.touched.Store(true)
			s.ctr.hits.Add(1)
			s.ctr.queries.Add(1)
			if sess != nil {
				sess.noteHit()
			}
			return res, nil
		}
		if fl, ok := st.inflight[key]; ok {
			// A concurrent identical query is already analysing; wait
			// for it instead of burning a second engine. Attribution
			// happens at resolution: a query that ends here — result,
			// leader error, or its own cancellation — ran no analysis
			// and counts as a hit; one that loops back to become the
			// new leader is attributed there instead.
			st.mu.Unlock()
			dedupHit := func() {
				s.ctr.hits.Add(1)
				s.ctr.inflightDedups.Add(1)
				s.ctr.queries.Add(1)
				if sess != nil {
					sess.noteHit()
				}
			}
			select {
			case <-fl.done:
			case <-ctx.Done():
				dedupHit()
				return nil, fmt.Errorf("service: %w", ctx.Err())
			}
			if fl.err != nil {
				if ctxErr(fl.err) && ctx.Err() == nil {
					// The leader was cancelled but this caller was
					// not: its query is still owed an answer, so loop
					// and take the leader role (or find a newer one).
					continue
				}
				dedupHit()
				return nil, fl.err
			}
			dedupHit()
			return fl.res, nil
		}
		fl := &inflight{done: make(chan struct{})}
		st.inflight[key] = fl
		st.mu.Unlock()
		s.ctr.misses.Add(1)
		s.ctr.queries.Add(1)

		// Before running cold, look for a seed for an incremental
		// analysis: the session's pinned previous result first (the
		// deterministic chained-probe path), then a resident near-match
		// from the delta pool — same options, overlapping transaction
		// set. The engine re-verifies soundness and falls back
		// transparently, so a bad candidate only costs the plan.
		var seed *analysis.Result
		var txFPs []model.Fingerprint
		if !static && opt.Recorder == nil && s.seedWindow > 0 {
			txFPs = sys.TransactionFingerprints()
			if sess != nil {
				seed = sess.currentSeed()
			}
			if seed == nil {
				seed = s.findSeed(key.opt, txFPs, sys)
			}
		}

		res, cost, err := s.run(ctx, st, sys, opt, static, seed)
		if sess != nil {
			sess.noteExecuted(res)
		}

		// The eviction policy prices entries by recomputation cost,
		// which for a delta-produced result is its *cold* cost, not the
		// measured incremental run (a re-miss has no guarantee of a
		// seed). Scale the measurement back up by the fraction of
		// task-rounds actually computed.
		if res != nil && res.Delta != nil {
			total := res.Iterations * (res.Delta.CleanTasks + res.Delta.DirtyTasks)
			if computed := total - res.Delta.TaskRoundsSaved; computed > 0 && total > computed {
				cost = cost * time.Duration(total) / time.Duration(computed)
			}
		}

		// Callers and the memo receive the result stripped of its
		// replay history; only the bounded seed pool keeps the full
		// version, so the memo's thousands of entries never pin
		// unreachable histories.
		shared := res
		if err == nil {
			if txFPs != nil && res.HasReplayState() {
				s.storeSeed(st, key, txFPs, res)
			}
			shared = res.WithoutReplayState()
		}

		fl.res, fl.err = shared, err
		st.mu.Lock()
		delete(st.inflight, key)
		if err == nil && s.capPerStripe > 0 {
			s.insert(st, key, shared, cost)
		}
		st.mu.Unlock()
		if err == nil {
			if res.Delta != nil {
				s.ctr.deltaHits.Add(1)
				s.ctr.roundsSaved.Add(int64(res.Delta.TaskRoundsSaved))
			}
			if res.ScenariosPruned > 0 {
				s.ctr.scenariosPruned.Add(res.ScenariosPruned)
			}
			if res.SubtreesPruned > 0 {
				s.ctr.subtreesPruned.Add(res.SubtreesPruned)
			}
		}
		close(fl.done)
		return shared, err
	}
}

// findSeed scans every stripe's seed pool for the best incremental
// baseline for a system with the given transaction fingerprints: same
// normalised options, same platform count, maximal transaction
// overlap, then fewest platform-parameter differences, then recency
// (the seedSeq stamp — the cross-stripe replacement for a single
// recency-ordered list). Each stripe is scanned under its own seedMu
// and the candidate's res pointer is captured inside that locked
// region (storeSeed may rewrite it); stripes are compared lock-free
// afterwards. Returns nil when nothing overlaps.
func (s *Service) findSeed(opt optKey, txFPs []model.Fingerprint, sys *model.System) *analysis.Result {
	counts := make(map[model.Fingerprint]int, len(txFPs))
	for _, fp := range txFPs {
		counts[fp]++
	}
	var best *analysis.Result
	bestScore, bestPlat := 0, 0
	bestSeq := int64(-1)
	used := make(map[model.Fingerprint]int, len(txFPs))
	for i := range s.stripes {
		st := &s.stripes[i]
		st.seedMu.Lock()
		for el := st.seeds.Front(); el != nil; el = el.Next() {
			se := el.Value.(*seedEntry)
			if se.key.opt != opt || len(se.res.System.Platforms) != len(sys.Platforms) {
				continue
			}
			// Multiset overlap: each incoming transaction can match at
			// most its multiplicity in the candidate.
			clear(used)
			overlap := 0
			for _, fp := range se.txFPs {
				if used[fp] < counts[fp] {
					used[fp]++
					overlap++
				}
			}
			if overlap == 0 {
				continue
			}
			samePlat := 0
			for m := range sys.Platforms {
				if se.res.System.Platforms[m] == sys.Platforms[m] {
					samePlat++
				}
			}
			if overlap > bestScore ||
				(overlap == bestScore && samePlat > bestPlat) ||
				(overlap == bestScore && samePlat == bestPlat && se.seq > bestSeq) {
				best, bestScore, bestPlat, bestSeq = se.res, overlap, samePlat, se.seq
			}
		}
		st.seedMu.Unlock()
	}
	return best
}

// storeSeed records a fresh result in its stripe's slice of the
// delta-seed pool, replacing any entry with the same cache key and
// evicting the oldest past the per-stripe window. The seedSeq stamp
// gives the entry its recency rank for cross-stripe findSeed scans.
func (s *Service) storeSeed(st *stripe, key cacheKey, txFPs []model.Fingerprint, res *analysis.Result) {
	seq := s.seedSeq.Add(1)
	st.seedMu.Lock()
	defer st.seedMu.Unlock()
	if el, ok := st.seedIdx[key]; ok {
		se := el.Value.(*seedEntry)
		se.txFPs, se.res, se.seq = txFPs, res, seq
		st.seeds.MoveToFront(el)
		return
	}
	st.seedIdx[key] = st.seeds.PushFront(&seedEntry{key: key, txFPs: txFPs, res: res, seq: seq})
	for st.seeds.Len() > s.seedWindow {
		last := st.seeds.Back()
		st.seeds.Remove(last)
		delete(st.seedIdx, last.Value.(*seedEntry).key)
	}
}

// maxEnginesPerStripe bounds the resident engines one stripe keeps. A
// serving process normally sees a handful of option sets, but nothing
// stops clients from sending per-query options (distinct Epsilon or
// Workers values), and each engine pins interference caches and
// scratch buffers for the process lifetime — so past the bound an
// arbitrary resident engine is dropped and rebuilt on demand, which
// only costs the warm-up of the next analysis with its options.
const maxEnginesPerStripe = 8

// run executes one analysis on the resident engine of the query's
// stripe, constructing the engine on first use. A non-nil seed routes
// the analysis through the incremental path; the engine falls back to
// a cold run when the seed turns out not to be soundly replayable.
// cost is the wall time of the engine call alone — measured past the
// engine-lock acquisition, so queueing behind an unrelated analysis
// does not misprice this entry for the eviction policy.
func (s *Service) run(ctx context.Context, st *stripe, sys *model.System, opt analysis.Options, static bool, seed *analysis.Result) (res *analysis.Result, cost time.Duration, err error) {
	// Workers is resolved to its effective value for the engine key so
	// Workers:0 and an explicit Workers:GOMAXPROCS share one engine.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ek := engineKey{opt: keyOf(opt, false), workers: workers}
	st.engMu.Lock()
	defer st.engMu.Unlock()
	eng, ok := st.engines[ek]
	if !ok {
		for k := range st.engines {
			if len(st.engines) < maxEnginesPerStripe {
				break
			}
			delete(st.engines, k)
		}
		engOpt := opt.Normalised()
		// With the delta path disabled no Result will ever be used as
		// a seed, so don't pay for recording replay state. The flag is
		// uniform per service (seedWindow is fixed at construction),
		// so it cannot alias engines across settings.
		engOpt.DisableReplayState = s.seedWindow == 0
		eng = analysis.NewEngine(engOpt)
		st.engines[ek] = eng
	}
	start := time.Now()
	switch {
	case static:
		res, err = eng.AnalyzeStaticContext(ctx, sys)
	case seed != nil:
		res, err = eng.AnalyzeFromContext(ctx, seed, sys)
	default:
		res, err = eng.AnalyzeContext(ctx, sys)
	}
	return res, time.Since(start), err
}

// runFresh executes one analysis on a throwaway engine (recorder
// queries only — the recorder is baked into the engine's options).
// Recorder results never enter the seed pool, so replay state is
// never recorded for them.
func (s *Service) runFresh(ctx context.Context, sys *model.System, opt analysis.Options, static bool) (*analysis.Result, error) {
	opt.DisableReplayState = true
	eng := analysis.NewEngine(opt)
	if static {
		return eng.AnalyzeStaticContext(ctx, sys)
	}
	return eng.AnalyzeContext(ctx, sys)
}

// evictionSample bounds how many of the oldest untouched entries the
// eviction policy weighs against each other. Larger samples protect
// expensive entries more aggressively but let stale ones linger;
// recency stays the primary signal because the sample is drawn from
// the cold end of the stripe only.
const evictionSample = 8

// insert adds (or refreshes) a memo entry in the stripe and evicts
// past the per-stripe capacity. Caller holds st.mu.
//
// Eviction is cost-weighted CLOCK (second chance), not pure LRU. Hits
// do not reorder the list — they set the entry's touched bit — so the
// list is ordered by insertion and the evictor supplies the recency
// signal: scanning from the cold end, an entry whose touched bit is
// set has been hit since the last sweep, so the bit is cleared and the
// entry rotates to the hot end (its second chance); among the first
// quarter of the stripe's untouched entries (capped at
// evictionSample), the cheapest-to-recompute entry goes first, so a
// resident exact-analysis verdict — ~30× the recomputation price of an
// approximate one — is not displaced by a burst of cheap entries of
// equal coldness. cost is the measured wall time of the analysis that
// produced res.
func (s *Service) insert(st *stripe, key cacheKey, res *analysis.Result, cost time.Duration) {
	if el, ok := st.index[key]; ok {
		st.lru.MoveToFront(el)
		e := el.Value.(*entry)
		e.res, e.cost = res, cost
		return
	}
	st.index[key] = st.lru.PushFront(&entry{key: key, res: res, cost: cost})
	for st.lru.Len() > s.capPerStripe {
		sample := (st.lru.Len() + 3) / 4
		if sample > evictionSample {
			sample = evictionSample
		}
		var victim *list.Element
		seen := 0
		for el := st.lru.Back(); el != nil && seen < sample; {
			prev := el.Prev()
			e := el.Value.(*entry)
			if e.touched.CompareAndSwap(true, false) {
				// Hit since the last sweep: second chance. The rotation
				// happens at eviction time, under the same st.mu the
				// hit path held for its lookup, so the list is never
				// mutated concurrently.
				st.lru.MoveToFront(el)
			} else {
				seen++
				if victim == nil || e.cost < victim.Value.(*entry).cost {
					victim = el
				}
			}
			el = prev
		}
		if victim == nil {
			// Every entry was touched since the last sweep (all bits
			// now cleared and the scan order preserved the rotation):
			// degrade to evicting the current cold end.
			victim = st.lru.Back()
		}
		st.lru.Remove(victim)
		delete(st.index, victim.Value.(*entry).key)
		s.ctr.evictions.Add(1)
	}
}

// ctxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
