package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"hsched/internal/analysis"
	"hsched/internal/model"
)

// Options configures a Service.
type Options struct {
	// Shards is the number of resident engine shards. Each shard owns
	// one set of analysis engines behind its own mutex; queries are
	// routed by system fingerprint, so repeated queries on the same
	// system land on the same warm engine while distinct systems
	// spread across shards and run concurrently. 0 selects
	// runtime.GOMAXPROCS(0).
	Shards int

	// Capacity bounds the verdict memo in entries (whole detached
	// Results). 0 selects 4096; a negative value disables memoisation
	// entirely (every query runs an analysis) while keeping the engine
	// pool and in-flight deduplication.
	Capacity int

	// Analysis is the default analysis configuration used by Analyze
	// and AnalyzeStatic; AnalyzeOptions overrides it per query.
	Analysis analysis.Options

	// DeltaWindow bounds the pool of recent results the service keeps
	// as incremental-analysis seeds: on a memo miss the incoming
	// system is diffed against the pool (by per-transaction
	// fingerprint overlap) and a near-match routes the query through
	// Engine.AnalyzeFrom, which replays the unchanged transactions'
	// state instead of recomputing it — the fast path for
	// admission-control traffic that mutates one transaction at a
	// time. 0 selects 4 × shards; a negative value disables the delta
	// path entirely.
	DeltaWindow int

	// InternCapacity bounds the fingerprint-keyed intern pool of
	// canonical resident systems (see Intern) in entries. 0 selects
	// 4096; a negative value disables interning (Intern returns its
	// argument unchanged).
	InternCapacity int
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) capacity() int {
	switch {
	case o.Capacity < 0:
		return 0
	case o.Capacity == 0:
		return 4096
	default:
		return o.Capacity
	}
}

func (o Options) deltaWindow() int {
	switch {
	case o.DeltaWindow < 0:
		return 0
	case o.DeltaWindow == 0:
		return 4 * o.shards()
	default:
		return o.DeltaWindow
	}
}

func (o Options) internCapacity() int {
	switch {
	case o.InternCapacity < 0:
		return 0
	case o.InternCapacity == 0:
		return 4096
	default:
		return o.InternCapacity
	}
}

// Stats is a snapshot of the service's counters. Every query is
// counted exactly once as either a hit (served from the memo, or from
// a concurrent duplicate's in-flight analysis) or a miss (it ran an
// analysis), so Hits + Misses == Queries always holds; Misses is the
// number of analyses the engines actually executed.
//
// The json tags are a stable wire contract: /v1/stats (internal/httpd)
// and `hsched bench -json` emit these lowercase names, and clients
// (bench -remote, dashboards) parse them — renaming one is a breaking
// API change, not a refactor.
type Stats struct {
	// Queries is the total number of Analyze* calls accepted.
	Queries int64 `json:"queries"`
	// Hits counts queries answered without running an analysis.
	Hits int64 `json:"hits"`
	// Misses counts queries that ran (or errored in) an analysis.
	Misses int64 `json:"misses"`
	// Evictions counts memo entries displaced by the LRU policy.
	Evictions int64 `json:"evictions"`
	// InflightDedups counts the subset of Hits that were answered by
	// waiting on a concurrent identical query instead of the memo.
	InflightDedups int64 `json:"inflight_dedups"`
	// DeltaHits counts the subset of Misses whose analysis ran
	// incrementally, seeded by a resident near-match — same result
	// bits, a fraction of the work.
	DeltaHits int64 `json:"delta_hits"`
	// RoundsSaved accumulates the per-task response-time computations
	// the delta hits skipped by replaying unchanged transactions
	// (analysis.DeltaInfo.TaskRoundsSaved summed over all delta hits)
	// — the service-level measure of how much fixed-point work the
	// incremental path avoided.
	RoundsSaved int64 `json:"rounds_saved"`
	// ScenariosPruned accumulates the exact scenario vectors the
	// analyses this service executed skipped via the admissible sweep
	// prune (analysis.Result.ScenariosPruned summed over all misses) —
	// the branch-and-bound counterpart of RoundsSaved for the cold
	// exact path. Always 0 for purely approximate traffic.
	ScenariosPruned int64 `json:"scenarios_pruned"`
	// SubtreesPruned accumulates the whole cursor subtrees the exact
	// sweeps refuted with a single prefix bound instead of per-scenario
	// checks (analysis.Result.SubtreesPruned summed over all misses).
	// ScenariosPruned/SubtreesPruned is the average refuted-subtree
	// size — the depth the branch-and-bound bounds cut at. Always 0
	// for purely approximate traffic.
	SubtreesPruned int64 `json:"subtrees_pruned"`
	// InternHits counts Intern/Interned calls answered by an existing
	// resident system — each one a decoded copy that collapsed onto
	// the canonical pointer (and, on the binary HTTP path, a request
	// that needed zero decoding).
	InternHits int64 `json:"intern_hits"`
	// InternMisses counts Intern calls that installed their argument
	// as a new resident.
	InternMisses int64 `json:"intern_misses"`
	// Resident is a gauge (not a counter): the number of distinct
	// systems currently resident in the intern pool. A workload of any
	// number of duplicate posts of one system holds it at 1.
	Resident int64 `json:"intern_resident"`
}

// HitRate returns Hits/Queries, or 0 before the first query.
func (st Stats) HitRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Queries)
}

// optKey is the comparable form of normalised analysis options used in
// cache keys: analysis.ReplayKey — the package's single enumeration of
// semantics-affecting option fields, so a future field is respected
// here automatically — plus the static bit. Workers is absent from
// ReplayKey by construction: results are bit-identical for every
// worker count, so queries differing only in Workers share one memo
// entry. Recorder is likewise absent (recorder queries bypass the
// memo). static distinguishes the one-pass static analysis from the
// holistic iteration — same system, different semantics.
type optKey struct {
	rk     analysis.ReplayKey
	static bool
}

func keyOf(opt analysis.Options, static bool) optKey {
	return optKey{rk: opt.ReplayKey(), static: static}
}

// cacheKey identifies one memoisable verdict: the canonical system
// fingerprint plus the normalised analysis options.
type cacheKey struct {
	fp  model.Fingerprint
	opt optKey
}

// engineKey identifies one resident engine within a shard. Unlike the
// cache key it includes Workers, because an engine is constructed with
// a fixed worker bound.
type engineKey struct {
	opt     optKey
	workers int
}

// shard owns the resident engines of one fingerprint slice. Engines
// are not safe for concurrent use, so the mutex serialises analyses
// within a shard; distinct shards analyse concurrently.
type shard struct {
	mu      sync.Mutex
	engines map[engineKey]*analysis.Engine
}

// inflight is one in-progress analysis that concurrent identical
// queries wait on instead of re-running it. res and err are written
// before done is closed.
type inflight struct {
	done chan struct{}
	res  *analysis.Result
	err  error
}

// Service is a concurrency-safe front-end over a pool of resident
// analysis engines: the long-running "admission control" shape of the
// ROADMAP. It routes each query to an engine shard by system
// fingerprint, memoises detached Results in an LRU keyed by
// (fingerprint, normalised options), and deduplicates concurrent
// identical queries singleflight-style so the analysis runs once.
//
// Returned *Results are shared: a memo hit hands the same pointer to
// every caller, so treat them as read-only. Callers that need a
// private mutable copy should run their own analysis.Engine.
//
// The zero value is not usable; construct with New.
type Service struct {
	opt Options

	// mu guards the memo, the in-flight table and the counters. It is
	// held only for map/list operations — never across an analysis —
	// so it is not a throughput bottleneck even under heavy traffic.
	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently used
	index    map[cacheKey]*list.Element
	inflight map[cacheKey]*inflight
	stats    Stats

	shards []shard

	// seedMu guards the delta-seed pool: recent dynamic Results kept
	// (most recent first) so a memo miss can look for a near-match to
	// seed an incremental analysis. Separate from mu so seed scans on
	// the miss path never block the memoised hit path.
	seedMu  sync.Mutex
	seeds   *list.List // of *seedEntry; front = most recent
	seedIdx map[cacheKey]*list.Element

	// intern is the fingerprint-keyed pool of canonical resident
	// systems (nil when disabled); it has its own mutex and counters,
	// merged into Stats snapshots.
	intern *internPool
}

type entry struct {
	key cacheKey
	res *analysis.Result
	// cost is the measured wall time of the analysis that produced
	// res — the recomputation price the eviction policy protects.
	cost time.Duration
}

// seedEntry is one delta-seed candidate: a recent result plus the
// precomputed per-transaction fingerprints its matching runs on.
type seedEntry struct {
	key   cacheKey
	txFPs []model.Fingerprint
	res   *analysis.Result
}

// New constructs a Service with the given options.
func New(opt Options) *Service {
	s := &Service{
		opt:      opt,
		lru:      list.New(),
		index:    make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*inflight),
		seeds:    list.New(),
		seedIdx:  make(map[cacheKey]*list.Element),
		shards:   make([]shard, opt.shards()),
		intern:   newInternPool(opt.internCapacity()),
	}
	for i := range s.shards {
		s.shards[i].engines = make(map[engineKey]*analysis.Engine)
	}
	return s
}

// Analyze runs (or recalls) the holistic dynamic-offset analysis of
// sys under the service's default options. It is safe for concurrent
// use; ctx cancels the underlying analysis promptly.
func (s *Service) Analyze(ctx context.Context, sys *model.System) (*analysis.Result, error) {
	return s.analyze(ctx, sys, s.opt.Analysis, false, nil)
}

// AnalyzeOptions is Analyze with per-query analysis options.
func (s *Service) AnalyzeOptions(ctx context.Context, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return s.analyze(ctx, sys, opt, false, nil)
}

// AnalyzeStatic runs (or recalls) the one-pass static-offset analysis
// of sys under the service's default options.
func (s *Service) AnalyzeStatic(ctx context.Context, sys *model.System) (*analysis.Result, error) {
	return s.analyze(ctx, sys, s.opt.Analysis, true, nil)
}

// AnalyzeStaticOptions is AnalyzeStatic with per-query options.
func (s *Service) AnalyzeStaticOptions(ctx context.Context, sys *model.System, opt analysis.Options) (*analysis.Result, error) {
	return s.analyze(ctx, sys, opt, true, nil)
}

// AnalyzeFingerprinted is AnalyzeOptions (static selects the one-pass
// static-offset analysis) for callers that already hold the system's
// fingerprint — typically the SHA-256 of its canonical wire bytes —
// and must not pay a second encoding-and-hash pass. fp must equal
// sys.Fingerprint(); an inconsistent pair poisons the verdict memo for
// that fingerprint. The binary HTTP path rides this: hash the request
// body once, look the system up in the intern pool, and analyse, with
// no per-request fingerprint encoding at all.
func (s *Service) AnalyzeFingerprinted(ctx context.Context, fp model.Fingerprint, sys *model.System, opt analysis.Options, static bool) (*analysis.Result, error) {
	return s.analyzeFP(ctx, fp, sys, opt, static, nil)
}

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	if s.intern != nil {
		st.InternHits, st.InternMisses, st.Resident = s.intern.snapshot()
	}
	return st
}

// Reset drops every memo entry and every resident engine, releasing
// the memory they pin; counters are preserved. In-flight analyses are
// unaffected (their results simply land in the fresh memo). Long-lived
// processes that query the service in bursts over disjoint system
// populations can call it between bursts.
func (s *Service) Reset() {
	s.mu.Lock()
	s.lru.Init()
	clear(s.index)
	s.mu.Unlock()
	s.seedMu.Lock()
	s.seeds.Init()
	clear(s.seedIdx)
	s.seedMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		clear(sh.engines)
		sh.mu.Unlock()
	}
	if s.intern != nil {
		s.intern.reset()
	}
}

func (s *Service) analyze(ctx context.Context, sys *model.System, opt analysis.Options, static bool, sess *Session) (*analysis.Result, error) {
	// No up-front Validate: the engine validates on every miss, and an
	// invalid system can never collide with a valid system's
	// fingerprint (the fingerprint covers every field validation
	// reads), so the hit path skips the check — it is the single most
	// expensive part of a memoised query.
	return s.analyzeFP(ctx, sys.Fingerprint(), sys, opt, static, sess)
}

// analyzeFP is the query ladder proper; fp must be sys.Fingerprint(),
// computed by the caller exactly once per request.
func (s *Service) analyzeFP(ctx context.Context, fp model.Fingerprint, sys *model.System, opt analysis.Options, static bool, sess *Session) (*analysis.Result, error) {
	if sess != nil {
		sess.noteProbe()
	}
	if opt.Recorder != nil {
		// Recorder queries want their per-iteration callbacks fired,
		// which a memo hit would silence; they bypass both the memo
		// and the resident engines (an engine is constructed with its
		// recorder baked in).
		s.mu.Lock()
		s.stats.Queries++
		s.stats.Misses++
		s.mu.Unlock()
		res, err := s.runFresh(ctx, sys, opt, static)
		if sess != nil {
			sess.noteExecuted(res)
		}
		if err == nil && (res.ScenariosPruned > 0 || res.SubtreesPruned > 0) {
			s.mu.Lock()
			s.stats.ScenariosPruned += res.ScenariosPruned
			s.stats.SubtreesPruned += res.SubtreesPruned
			s.mu.Unlock()
		}
		return res, err
	}

	key := cacheKey{fp: fp, opt: keyOf(opt, static)}
	counted := false
	for {
		s.mu.Lock()
		// One query is counted exactly once even if a cancelled
		// singleflight leader forces this caller back around the loop.
		if !counted {
			s.stats.Queries++
			counted = true
		}
		if el, ok := s.index[key]; ok {
			s.lru.MoveToFront(el)
			s.stats.Hits++
			res := el.Value.(*entry).res
			s.mu.Unlock()
			if sess != nil {
				sess.noteHit()
			}
			return res, nil
		}
		if fl, ok := s.inflight[key]; ok {
			// A concurrent identical query is already analysing; wait
			// for it instead of burning a second engine. Attribution
			// happens at resolution: a query that ends here — result,
			// leader error, or its own cancellation — ran no analysis
			// and counts as a hit; one that loops back to become the
			// new leader is attributed there instead.
			s.mu.Unlock()
			dedupHit := func() {
				s.mu.Lock()
				s.stats.Hits++
				s.stats.InflightDedups++
				s.mu.Unlock()
				if sess != nil {
					sess.noteHit()
				}
			}
			select {
			case <-fl.done:
			case <-ctx.Done():
				dedupHit()
				return nil, fmt.Errorf("service: %w", ctx.Err())
			}
			if fl.err != nil {
				if ctxErr(fl.err) && ctx.Err() == nil {
					// The leader was cancelled but this caller was
					// not: its query is still owed an answer, so loop
					// and take the leader role (or find a newer one).
					continue
				}
				dedupHit()
				return nil, fl.err
			}
			dedupHit()
			return fl.res, nil
		}
		s.stats.Misses++
		fl := &inflight{done: make(chan struct{})}
		s.inflight[key] = fl
		s.mu.Unlock()

		// Before running cold, look for a seed for an incremental
		// analysis: the session's pinned previous result first (the
		// deterministic chained-probe path), then a resident near-match
		// from the delta pool — same options, overlapping transaction
		// set. The engine re-verifies soundness and falls back
		// transparently, so a bad candidate only costs the plan.
		var seed *analysis.Result
		var txFPs []model.Fingerprint
		if !static && opt.Recorder == nil && s.opt.deltaWindow() > 0 {
			txFPs = sys.TransactionFingerprints()
			if sess != nil {
				seed = sess.currentSeed()
			}
			if seed == nil {
				seed = s.findSeed(key.opt, txFPs, sys)
			}
		}

		res, cost, err := s.run(ctx, fp, sys, opt, static, seed)
		if sess != nil {
			sess.noteExecuted(res)
		}

		// The eviction policy prices entries by recomputation cost,
		// which for a delta-produced result is its *cold* cost, not the
		// measured incremental run (a re-miss has no guarantee of a
		// seed). Scale the measurement back up by the fraction of
		// task-rounds actually computed.
		if res != nil && res.Delta != nil {
			total := res.Iterations * (res.Delta.CleanTasks + res.Delta.DirtyTasks)
			if computed := total - res.Delta.TaskRoundsSaved; computed > 0 && total > computed {
				cost = cost * time.Duration(total) / time.Duration(computed)
			}
		}

		// Callers and the memo receive the result stripped of its
		// replay history; only the bounded seed pool keeps the full
		// version, so the memo's thousands of entries never pin
		// unreachable histories.
		shared := res
		if err == nil {
			if txFPs != nil && res.HasReplayState() {
				s.storeSeed(key, txFPs, res)
			}
			shared = res.WithoutReplayState()
		}

		fl.res, fl.err = shared, err
		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			if s.opt.capacity() > 0 {
				s.insert(key, shared, cost)
			}
			if res.Delta != nil {
				s.stats.DeltaHits++
				s.stats.RoundsSaved += int64(res.Delta.TaskRoundsSaved)
			}
			s.stats.ScenariosPruned += res.ScenariosPruned
			s.stats.SubtreesPruned += res.SubtreesPruned
		}
		s.mu.Unlock()
		close(fl.done)
		return shared, err
	}
}

// findSeed scans the seed pool for the best incremental baseline for a
// system with the given transaction fingerprints: same normalised
// options, same platform count, maximal transaction overlap, then
// fewest platform-parameter differences, then recency. Returns nil
// when nothing overlaps.
func (s *Service) findSeed(opt optKey, txFPs []model.Fingerprint, sys *model.System) *analysis.Result {
	counts := make(map[model.Fingerprint]int, len(txFPs))
	for _, fp := range txFPs {
		counts[fp]++
	}
	s.seedMu.Lock()
	defer s.seedMu.Unlock()
	var best *seedEntry
	bestScore, bestPlat := 0, 0
	used := make(map[model.Fingerprint]int, len(txFPs))
	for el := s.seeds.Front(); el != nil; el = el.Next() {
		se := el.Value.(*seedEntry)
		if se.key.opt != opt || len(se.res.System.Platforms) != len(sys.Platforms) {
			continue
		}
		// Multiset overlap: each incoming transaction can match at
		// most its multiplicity in the candidate.
		clear(used)
		overlap := 0
		for _, fp := range se.txFPs {
			if used[fp] < counts[fp] {
				used[fp]++
				overlap++
			}
		}
		if overlap == 0 {
			continue
		}
		samePlat := 0
		for m := range sys.Platforms {
			if se.res.System.Platforms[m] == sys.Platforms[m] {
				samePlat++
			}
		}
		// Entries are scanned most-recent-first, so strict improvement
		// keeps the most recent among equals.
		if overlap > bestScore || (overlap == bestScore && samePlat > bestPlat) {
			best, bestScore, bestPlat = se, overlap, samePlat
		}
	}
	if best == nil {
		return nil
	}
	return best.res
}

// storeSeed records a fresh result in the delta-seed pool, replacing
// any entry with the same cache key and evicting the oldest past the
// window.
func (s *Service) storeSeed(key cacheKey, txFPs []model.Fingerprint, res *analysis.Result) {
	s.seedMu.Lock()
	defer s.seedMu.Unlock()
	if el, ok := s.seedIdx[key]; ok {
		se := el.Value.(*seedEntry)
		se.txFPs, se.res = txFPs, res
		s.seeds.MoveToFront(el)
		return
	}
	s.seedIdx[key] = s.seeds.PushFront(&seedEntry{key: key, txFPs: txFPs, res: res})
	for s.seeds.Len() > s.opt.deltaWindow() {
		last := s.seeds.Back()
		s.seeds.Remove(last)
		delete(s.seedIdx, last.Value.(*seedEntry).key)
	}
}

// maxEnginesPerShard bounds the resident engines one shard keeps. A
// serving process normally sees a handful of option sets, but nothing
// stops clients from sending per-query options (distinct Epsilon or
// Workers values), and each engine pins interference caches and
// scratch buffers for the process lifetime — so past the bound an
// arbitrary resident engine is dropped and rebuilt on demand, which
// only costs the warm-up of the next analysis with its options.
const maxEnginesPerShard = 8

// run executes one analysis on the resident engine of the query's
// shard, constructing the engine on first use. A non-nil seed routes
// the analysis through the incremental path; the engine falls back to
// a cold run when the seed turns out not to be soundly replayable.
// cost is the wall time of the engine call alone — measured past the
// shard-lock acquisition, so queueing behind an unrelated analysis
// does not misprice this entry for the eviction policy.
func (s *Service) run(ctx context.Context, fp model.Fingerprint, sys *model.System, opt analysis.Options, static bool, seed *analysis.Result) (res *analysis.Result, cost time.Duration, err error) {
	sh := &s.shards[fp.Shard(len(s.shards))]
	// Workers is resolved to its effective value for the engine key so
	// Workers:0 and an explicit Workers:GOMAXPROCS share one engine.
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ek := engineKey{opt: keyOf(opt, false), workers: workers}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	eng, ok := sh.engines[ek]
	if !ok {
		for k := range sh.engines {
			if len(sh.engines) < maxEnginesPerShard {
				break
			}
			delete(sh.engines, k)
		}
		engOpt := opt.Normalised()
		// With the delta path disabled no Result will ever be used as
		// a seed, so don't pay for recording replay state. The flag is
		// uniform per service (deltaWindow is fixed at construction),
		// so it cannot alias engines across settings.
		engOpt.DisableReplayState = s.opt.deltaWindow() == 0
		eng = analysis.NewEngine(engOpt)
		sh.engines[ek] = eng
	}
	start := time.Now()
	switch {
	case static:
		res, err = eng.AnalyzeStaticContext(ctx, sys)
	case seed != nil:
		res, err = eng.AnalyzeFromContext(ctx, seed, sys)
	default:
		res, err = eng.AnalyzeContext(ctx, sys)
	}
	return res, time.Since(start), err
}

// runFresh executes one analysis on a throwaway engine (recorder
// queries only — the recorder is baked into the engine's options).
// Recorder results never enter the seed pool, so replay state is
// never recorded for them.
func (s *Service) runFresh(ctx context.Context, sys *model.System, opt analysis.Options, static bool) (*analysis.Result, error) {
	opt.DisableReplayState = true
	eng := analysis.NewEngine(opt)
	if static {
		return eng.AnalyzeStaticContext(ctx, sys)
	}
	return eng.AnalyzeContext(ctx, sys)
}

// evictionSample bounds how many of the oldest entries the eviction
// policy weighs against each other. Larger samples protect expensive
// entries more aggressively but let stale ones linger; recency stays
// the primary signal because the sample is drawn from the LRU tail
// only.
const evictionSample = 8

// insert adds (or refreshes) a memo entry and evicts past capacity.
// Eviction is cost-weighted, not pure LRU: among the oldest quarter of
// the memo (capped at evictionSample entries) the cheapest-to-recompute
// entry goes first, so a resident exact-analysis verdict — ~30× the
// recomputation price of an approximate one — is not displaced by a
// burst of cheap entries of equal recency. cost is the measured wall
// time of the analysis that produced res. Caller holds s.mu.
func (s *Service) insert(key cacheKey, res *analysis.Result, cost time.Duration) {
	if el, ok := s.index[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*entry)
		e.res, e.cost = res, cost
		return
	}
	s.index[key] = s.lru.PushFront(&entry{key: key, res: res, cost: cost})
	for s.lru.Len() > s.opt.capacity() {
		sample := (s.lru.Len() + 3) / 4
		if sample > evictionSample {
			sample = evictionSample
		}
		victim := s.lru.Back()
		for k, el := 1, victim.Prev(); k < sample; k, el = k+1, el.Prev() {
			if el.Value.(*entry).cost < victim.Value.(*entry).cost {
				victim = el
			}
		}
		s.lru.Remove(victim)
		delete(s.index, victim.Value.(*entry).key)
		s.stats.Evictions++
	}
}

// ctxErr reports whether err is (or wraps) a context cancellation or
// deadline error.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
