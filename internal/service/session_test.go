package service

import (
	"context"
	"reflect"
	"testing"

	"hsched/internal/analysis"
	"hsched/internal/gen"
	"hsched/internal/model"
)

// sessionChainSystem draws one deterministic base system for the
// session tests.
func sessionChainSystem(t *testing.T, seed int64) *model.System {
	t.Helper()
	sys, err := gen.System(gen.Config{
		Seed: seed, Platforms: 2, Transactions: 3, ChainLen: 3,
		PeriodMin: 20, PeriodMax: 400, Utilization: 0.45,
		AlphaMin: 0.4, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// mutateChain returns a chain of length n of cumulative one-task WCET
// retunings of base.
func mutateChain(base *model.System, n int) []*model.System {
	out := []*model.System{base}
	cur := base
	for c := 1; c < n; c++ {
		mut := cur.Clone()
		tr := &mut.Transactions[c%len(mut.Transactions)]
		tr.Tasks[c%len(tr.Tasks)].WCET *= 1.0 + 0.01*float64(c)
		out = append(out, mut)
		cur = mut
	}
	return out
}

// TestSessionChainedProbes: probing a mutation chain through a session
// returns results bit-identical to cold engine analyses, every probe
// is accounted exactly once, and the chained one-edit probes ride the
// incremental path.
func TestSessionChainedProbes(t *testing.T) {
	chain := mutateChain(sessionChainSystem(t, 7), 8)
	svc := New(Options{Shards: 1})
	sess := svc.NewSession()
	eng := analysis.NewEngine(analysis.Options{})
	ctx := context.Background()

	for _, sys := range chain {
		got, err := sess.Analyze(ctx, sys)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Analyze(sys)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Tasks, want.Tasks) || got.Schedulable != want.Schedulable {
			t.Fatalf("session probe differs from cold analysis")
		}
	}

	st := sess.Stats()
	if st.Probes != int64(len(chain)) {
		t.Fatalf("probes = %d, want %d", st.Probes, len(chain))
	}
	if st.MemoHits+st.Executed != st.Probes {
		t.Fatalf("stats inconsistent: memo %d + executed %d != probes %d", st.MemoHits, st.Executed, st.Probes)
	}
	if st.DeltaHits == 0 || st.RoundsSaved <= 0 {
		t.Fatalf("stats = %+v: chained one-edit probes never rode the delta path", st)
	}
	// Per-session counters roll up into the service's: this session is
	// the only traffic.
	svcSt := svc.Stats()
	if svcSt.Queries != st.Probes || svcSt.DeltaHits != st.DeltaHits || svcSt.RoundsSaved != st.RoundsSaved {
		t.Fatalf("service stats %+v do not roll up session stats %+v", svcSt, st)
	}
	// Re-probing the whole chain is answered entirely by the memo.
	for _, sys := range chain {
		if _, err := sess.Analyze(ctx, sys); err != nil {
			t.Fatal(err)
		}
	}
	st2 := sess.Stats()
	if st2.MemoHits != st.MemoHits+int64(len(chain)) {
		t.Fatalf("re-probe memo hits %d, want %d", st2.MemoHits, st.MemoHits+int64(len(chain)))
	}
}

// TestSessionPinnedSeedBeatsPoolLuck: two interleaved mutation chains
// over disjoint systems, on a service whose delta pool holds a single
// entry. Plain service queries lose the pool entry to the other chain
// between probes and run cold; sessions pin their own seed and keep
// riding the incremental path — the tentpole determinism claim.
func TestSessionPinnedSeedBeatsPoolLuck(t *testing.T) {
	chainA := mutateChain(sessionChainSystem(t, 11), 6)
	chainB := mutateChain(sessionChainSystem(t, 23), 6)
	ctx := context.Background()

	// Plain interleaved queries: the one-slot pool always holds the
	// other chain's (non-overlapping) result when a probe misses.
	plain := New(Options{Shards: 1, DeltaWindow: 1})
	for k := range chainA {
		if _, err := plain.Analyze(ctx, chainA[k]); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Analyze(ctx, chainB[k]); err != nil {
			t.Fatal(err)
		}
	}
	if st := plain.Stats(); st.DeltaHits != 0 {
		t.Fatalf("plain interleaved queries delta-hit %d times; the pool-luck baseline is broken", st.DeltaHits)
	}

	// Session-pinned probes on an identically configured service.
	pinned := New(Options{Shards: 1, DeltaWindow: 1})
	sessA, sessB := pinned.NewSession(), pinned.NewSession()
	for k := range chainA {
		if _, err := sessA.Analyze(ctx, chainA[k]); err != nil {
			t.Fatal(err)
		}
		if _, err := sessB.Analyze(ctx, chainB[k]); err != nil {
			t.Fatal(err)
		}
	}
	stA, stB := sessA.Stats(), sessB.Stats()
	if stA.DeltaHits == 0 || stB.DeltaHits == 0 {
		t.Fatalf("pinned sessions should delta-hit on every chain: A %+v, B %+v", stA, stB)
	}
	if got := pinned.Stats().DeltaHits; got != stA.DeltaHits+stB.DeltaHits {
		t.Fatalf("service delta hits %d != session sum %d", got, stA.DeltaHits+stB.DeltaHits)
	}
}

// TestSessionOnDeltaDisabledService: sessions degrade to memoisation
// when the service's delta path is off — no pinning, no delta hits,
// results unaffected.
func TestSessionOnDeltaDisabledService(t *testing.T) {
	chain := mutateChain(sessionChainSystem(t, 31), 4)
	svc := New(Options{Shards: 1, DeltaWindow: -1})
	sess := svc.NewSession()
	ctx := context.Background()
	for _, sys := range chain {
		if _, err := sess.Analyze(ctx, sys); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.DeltaHits != 0 {
		t.Fatalf("delta-disabled service produced session delta hits: %+v", st)
	}
	if sess.currentSeed() != nil {
		t.Fatalf("delta-disabled service pinned a seed")
	}
	if st.MemoHits+st.Executed != st.Probes {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

// TestSessionDrop: dropping the pinned seed releases it; probing
// continues unaffected.
func TestSessionDrop(t *testing.T) {
	chain := mutateChain(sessionChainSystem(t, 41), 3)
	svc := New(Options{Shards: 1})
	sess := svc.NewSession()
	ctx := context.Background()
	if _, err := sess.Analyze(ctx, chain[0]); err != nil {
		t.Fatal(err)
	}
	if sess.currentSeed() == nil {
		t.Fatalf("no seed pinned after an executed probe")
	}
	sess.Drop()
	if sess.currentSeed() != nil {
		t.Fatalf("seed survived Drop")
	}
	if _, err := sess.Analyze(ctx, chain[1]); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Probes != 2 {
		t.Fatalf("probes = %d, want 2", st.Probes)
	}
}
