package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"hsched/internal/gen"
	"hsched/internal/model"
)

// slowApproxSystem generates a system whose approximate holistic
// analysis runs for hundreds of milliseconds over tens of fixed-point
// rounds (~10 ms per round cold on the development container) — slow
// enough that a tens-of-milliseconds deadline provably expires in the
// middle of the iteration, fast enough that the test's follow-up full
// recompute stays affordable even under -race.
func slowApproxSystem(t *testing.T) *model.System {
	t.Helper()
	sys, err := gen.System(gen.Config{
		Seed: 11, Platforms: 4, Transactions: 50, ChainLen: 8,
		PeriodMin: 50, PeriodMax: 1000, Utilization: 0.65,
		AlphaMin: 0.5, AlphaMax: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestDeadlineMidAnalysisDoesNotPoison: a query whose context deadline
// expires mid-fixed-point must leave no trace — not in the verdict
// memo (a later identical query would otherwise be answered with a
// half-converged result) and not in the delta-seed pool (a later
// near-match would otherwise replay truncated history). The follow-up
// identical query must recompute from scratch and succeed.
func TestDeadlineMidAnalysisDoesNotPoison(t *testing.T) {
	sys := slowApproxSystem(t)
	svc := New(Options{Shards: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	if _, err := svc.Analyze(ctx, sys); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined analysis: err = %v, want wrapped context.DeadlineExceeded", err)
	}

	// The identical query recomputes — a miss, not a hit off a
	// poisoned memo entry — and succeeds.
	res, err := svc.Analyze(context.Background(), sys)
	if err != nil {
		t.Fatalf("follow-up identical query: %v", err)
	}
	if !res.Converged {
		t.Fatal("follow-up result did not converge")
	}
	st := svc.Stats()
	if st.Queries != 2 || st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats after failed+recomputed query: %+v, want 2 queries, 2 misses, 0 hits", st)
	}

	// Only now is the memo warm: a third identical query shares the
	// recomputed result.
	again, err := svc.Analyze(context.Background(), sys)
	if err != nil {
		t.Fatal(err)
	}
	if again != res {
		t.Fatal("third query did not hit the memo entry of the recomputed result")
	}
	if st = svc.Stats(); st.Hits != 1 {
		t.Fatalf("stats after third query: %+v, want 1 hit", st)
	}

	// The delta-seed pool holds the successful result (never the
	// deadlined one): a near-match rides the incremental path and
	// succeeds.
	mut := sys.Clone()
	mut.Transactions[0].Tasks[0].WCET *= 1.01
	mres, err := svc.Analyze(context.Background(), mut)
	if err != nil {
		t.Fatalf("near-match after failure: %v", err)
	}
	if mres.Delta == nil {
		t.Fatal("near-match did not ride the delta path — seed pool empty or poisoned")
	}
	if st = svc.Stats(); st.DeltaHits != 1 || st.Hits+st.Misses != st.Queries {
		t.Fatalf("final stats: %+v, want 1 delta hit and hits+misses==queries", st)
	}
}

// TestDeadlineMidAnalysisSessionSeed: the same property through a
// probe session — an aborted probe must not pin a partial result as
// the session's delta seed, and the next probe recomputes cleanly.
func TestDeadlineMidAnalysisSessionSeed(t *testing.T) {
	sys := slowApproxSystem(t)
	svc := New(Options{Shards: 1})
	sess := svc.NewSession()

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	if _, err := sess.Analyze(ctx, sys); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadlined probe: err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if seed := sess.currentSeed(); seed != nil {
		t.Fatal("aborted probe pinned a seed")
	}

	res, err := sess.Analyze(context.Background(), sys)
	if err != nil {
		t.Fatalf("follow-up probe: %v", err)
	}
	if !res.Converged {
		t.Fatal("follow-up probe did not converge")
	}
	ss := sess.Stats()
	if ss.Probes != 2 || ss.Executed != 2 || ss.MemoHits != 0 {
		t.Fatalf("session stats: %+v, want 2 probes, 2 executed, 0 memo hits", ss)
	}

	// The successful probe pinned its result: a one-edit probe chains
	// through the session's incremental path.
	mut := sys.Clone()
	mut.Transactions[1].Tasks[0].WCET *= 1.01
	mres, err := sess.Analyze(context.Background(), mut)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Delta == nil {
		t.Fatal("chained probe did not ride the pinned seed")
	}
}
