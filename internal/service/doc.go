// Package service is the long-running, concurrency-safe front-end to
// the schedulability analysis: the building block for serving
// admission-control-style queries at traffic scale (the ROADMAP's
// north star), where many callers keep asking "is this system
// schedulable?" about overlapping populations of systems.
//
// A Service composes three mechanisms the one-shot API lacks:
//
//   - a sharded pool of resident analysis.Engines. Engines amortise
//     their interference caches and scratch buffers across calls but
//     are single-goroutine; the service keeps one engine set per shard
//     behind a mutex and routes queries by model.System.Fingerprint,
//     so same-system traffic reuses a warm engine while distinct
//     systems analyse concurrently on other shards;
//
//   - an LRU verdict memo of detached *analysis.Results keyed by
//     (fingerprint, normalised options). Options.Normalised
//     materialises defaulted fields, so a zero-value Options and an
//     explicitly-spelled-default Options share an entry; Workers is
//     excluded from keys (results are identical for every worker
//     count) and Recorder queries bypass the memo (a hit would
//     silence their callbacks). Memo hits return a shared pointer —
//     treat cached Results as read-only;
//
//   - singleflight-style deduplication: concurrent identical queries
//     block on the first one's in-flight analysis instead of running
//     their own, and are counted as hits. If the in-flight leader is
//     cancelled, a waiting caller whose own context is still live
//     retries and becomes the new leader.
//
// Every entry point takes a context.Context and cancels the underlying
// analysis promptly (see analysis.Engine.AnalyzeContext for the
// polling points). Stats exposes queries, hits, misses, evictions and
// in-flight dedups; Hits + Misses == Queries by construction, and
// Misses is exactly the number of analyses executed — which is what
// the design-search and benchmark tests assert on.
//
// The heavy consumers are wired through this package: design.Minimize
// routes its feasibility oracle through a Service (its bisection
// re-probes identical platform parameters, the biggest memoisation
// win), the experiments acceptance sweep shares one Service across its
// workers, and the hsched façade's package-level Analyze/AnalyzeStatic
// are thin wrappers over a process-wide default Service.
package service
