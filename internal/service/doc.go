// Package service is the long-running, concurrency-safe front-end to
// the schedulability analysis: the building block for serving
// admission-control-style queries at traffic scale (the ROADMAP's
// north star), where many callers keep asking "is this system
// schedulable?" about overlapping populations of systems that mutate
// one transaction at a time.
//
// A query descends a ladder of progressively more expensive paths:
//
//	query(sys, opts)
//	  │  fingerprint + normalised-options key
//	  ▼
//	verdict memo ──────────── hit ──► shared *Result      (~µs)
//	  │ miss
//	  ▼
//	in-flight table ───────── dup ──► wait on leader      (~analysis)
//	  │ leader
//	  ▼
//	delta-seed pool ── near-match ──► AnalyzeFrom:        (fraction of
//	  │ no seed                       replay unchanged,    a cold run)
//	  │                               recompute dirty
//	  ▼
//	resident engine ────────────────► cold Analyze        (full work)
//	                                    │ exact sweeps stream from a
//	                                    │ mixed-radix cursor, jump
//	                                    │ refuted subtrees via admissible
//	                                    │ prefix bounds (Stats.Scenarios-
//	                                    │ Pruned / SubtreesPruned) and
//	                                    ▼ chunk-split onto idle workers
//
// The mechanisms, top to bottom:
//
//   - a lock-striped verdict memo of detached *analysis.Results keyed
//     by (fingerprint, normalised options). The memo is split into
//     Options.Shards independent stripes routed by fingerprint (the
//     same routing as the engine pool, so one query takes exactly one
//     stripe mutex), each holding its slice of the capacity.
//     Options.Normalised materialises defaulted fields, so a
//     zero-value Options and an explicitly-spelled-default Options
//     share an entry; Workers is excluded from keys (results are
//     identical for every worker count) and Recorder queries bypass
//     the memo (a hit would silence their callbacks). Memo hits
//     return a shared pointer — treat cached Results as read-only —
//     and are allocation-free: a hit reads the stripe's index under
//     its mutex and records recency by setting the entry's CLOCK bit
//     (an atomic, touched outside the lock) instead of reordering a
//     list. Eviction is second-chance and cost-weighted: the evictor
//     scans from the cold end, rotates touched entries back with
//     their bit cleared, and among the untouched sample evicts the
//     cheapest-to-recompute entry first, so exact-analysis verdicts
//     (~30× the recomputation price of approximate ones) survive
//     bursts of cheap traffic;
//
//   - singleflight-style deduplication: concurrent identical queries
//     block on the first one's in-flight analysis instead of running
//     their own, and are counted as hits. If the in-flight leader is
//     cancelled, a waiting caller whose own context is still live
//     retries and becomes the new leader;
//
//   - a delta-seed pool of recent results (Options.DeltaWindow). A
//     miss diffs the incoming system against the pool by
//     per-transaction fingerprint overlap; the best near-match seeds
//     Engine.AnalyzeFrom, which replays the recorded per-round state
//     of every transaction the edit provably cannot reach and
//     recomputes only the dirty rest — bit-identical to a cold
//     analysis, a fraction of the work. Stats.DeltaHits counts the
//     analyses served this way and Stats.RoundsSaved the per-task
//     response computations the replay skipped;
//
//   - a pool of resident analysis.Engines, one set per stripe.
//     Engines amortise their transaction-keyed slabs (interference
//     rows, bounds, round buffers) across calls but are
//     single-goroutine; the service keeps each stripe's engines
//     behind their own mutex and routes queries by
//     model.System.Fingerprint, so same-system traffic reuses a warm
//     engine while distinct systems analyse concurrently on other
//     stripes;
//
//   - a fingerprint-keyed intern pool (Intern, InternFingerprinted,
//     Interned; Options.InternCapacity) sitting in front of the
//     ladder for callers that decode systems from bytes. Interning a
//     system returns the canonical resident *model.System for its
//     fingerprint, so a population of duplicate-heavy traffic (an
//     admission controller re-posting the same systems, the httpd
//     transport's binary codec) collapses to one resident copy per
//     distinct system — and a transport that already knows the
//     fingerprint (the SHA-256 of the canonical wire bytes IS the
//     fingerprint; see model.System.MarshalBinary) answers a repeat
//     without decoding at all. Interned systems must never be
//     mutated. Stats reports InternHits, InternMisses and Resident
//     (a gauge: distinct systems currently pooled).
//
// Search loops — the priority-assignment searches of package sched,
// the bandwidth minimisation of package design, an admission
// controller trialling edits — probe chains of one-edit-apart systems
// and should hold a Session (NewSession): the session pins the
// caller's previous result as the explicit seed of the next probe, so
// the chained probes ride the incremental path deterministically
// instead of depending on what the shared pool retains, and
// SessionStats attributes the session's share of the traffic
// (probes, memo hits, executed analyses, delta hits, rounds saved).
// The pinned result also carries the previous probe's exact-sweep
// state — each task's critical scenario vector — which the next
// probe's sweeps re-evaluate as their branch-and-bound incumbents, so
// exact-oracle searches prune against what the one-edit-apart
// predecessor already established (bit-identical either way; stale
// shapes are discarded, never believed).
//
// Every entry point takes a context.Context and cancels the underlying
// analysis promptly (see analysis.Engine.AnalyzeContext for the
// polling points). Stats exposes queries, hits, misses, evictions,
// in-flight dedups, delta hits, rounds saved, and scenarios and
// subtrees pruned (the exact sweeps' branch-and-bound savings — per-
// scenario skips and whole-subtree cursor jumps — summed over executed
// analyses). The counters are individually-padded atomics, bumped
// without any lock; Stats reads them without stopping traffic, so a
// mid-traffic snapshot is a consistent-enough view rather than an
// instantaneous one (attribution lands before the query count, and
// the snapshot reads Queries first, so Hits+Misses ≥ Queries in any
// snapshot). At quiescence Hits + Misses == Queries exactly, Misses
// is exactly the number of analyses executed, and DeltaHits ⊆ Misses
// — which is what the design-search and benchmark tests assert on.
//
// The heavy consumers are wired through this package: sched.Audsley
// and sched.HOPA probe their schedulability oracle through a Session
// (one-priority-move probes delta-hit via the priority-band dirty
// rule, revisited assignments memo-hit), design.Minimize routes its
// feasibility oracle the same way (revisited points memo-hit, fresh
// one-platform-apart probes delta-hit), the experiments acceptance and
// policy sweeps share one Service across their workers,
// experiments.AdmissionChurn replays the canonical admit/retune/drop
// workload against one, and the hsched façade's package-level
// Analyze/AnalyzeStatic are thin wrappers over a process-wide default
// Service.
//
// Out-of-process callers get the same ladder over HTTP: the
// internal/httpd server (CLI: `hsched serve`) routes its analyze,
// assign and minimize endpoints through one shared Service, and its
// per-client session tokens are Sessions — a remote probe chain of
// diff-shaped edits rides the pinned-seed incremental path exactly
// like an in-process search loop, with SessionStats reported in every
// response. The json tags on Stats and SessionStats are that wire
// contract.
package service
