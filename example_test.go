package hsched_test

import (
	"fmt"
	"math"
	"testing"

	"hsched"
	"hsched/internal/experiments"
)

// Example_analyze demonstrates the façade on a two-task pipeline
// spanning two abstract platforms.
func Example_analyze() {
	sys := &hsched.System{
		Platforms: []hsched.Platform{
			{Alpha: 0.5, Delta: 1, Beta: 0.5},
			{Alpha: 0.25, Delta: 2, Beta: 0.5},
		},
		Transactions: []hsched.Transaction{{
			Name: "pipeline", Period: 40, Deadline: 40,
			Tasks: []hsched.Task{
				{Name: "produce", WCET: 1, BCET: 1, Priority: 2, Platform: 0},
				{Name: "consume", WCET: 1, BCET: 1, Priority: 1, Platform: 1},
			},
		}},
	}
	res, err := hsched.Analyze(sys, hsched.AnalysisOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("R = %g, schedulable = %v\n", res.TransactionResponse(0), res.Schedulable)
	// Output:
	// R = 9, schedulable = true
}

// TestFacadeEndToEnd drives the whole public surface once: component
// assembly → transactions → analysis → server realisation →
// simulation → JSON round trip.
func TestFacadeEndToEnd(t *testing.T) {
	asm := experiments.PaperAssembly()
	sys, err := asm.Transactions()
	if err != nil {
		t.Fatal(err)
	}

	res, err := hsched.Analyze(sys, hsched.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("paper assembly unschedulable")
	}

	servers := make([]hsched.Server, len(sys.Platforms))
	for m, p := range sys.Platforms {
		if servers[m], err = hsched.ServerFor(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	simres, err := hsched.Simulate(sys, servers, hsched.SimConfig{Horizon: 1050, Step: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sys.Transactions {
		if simres.MaxEndToEnd(i) > res.TransactionResponse(i)+0.1 {
			t.Errorf("Γ%d: simulated %v above bound %v", i+1,
				simres.MaxEndToEnd(i), res.TransactionResponse(i))
		}
	}

	path := t.TempDir() + "/sys.json"
	if err := hsched.SaveSystem(sys, path); err != nil {
		t.Fatal(err)
	}
	back, err := hsched.LoadSystem(path)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := hsched.Analyze(back, hsched.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sys.Transactions {
		if math.Abs(res2.TransactionResponse(i)-res.TransactionResponse(i)) > 1e-9 {
			t.Errorf("Γ%d: response changed after JSON round trip", i+1)
		}
	}
}

// TestFacadeDesignSearch exercises MinimizeBandwidth through the
// façade.
func TestFacadeDesignSearch(t *testing.T) {
	sys := experiments.PaperSystem()
	fams := []hsched.ServerFamily{
		hsched.PollingFamily(0.8333),
		hsched.PollingFamily(0.8333),
		hsched.PollingFamily(1.25),
	}
	res, err := hsched.MinimizeBandwidth(sys, fams, hsched.DesignOptions{Tolerance: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Analysis.Schedulable || res.TotalBandwidth >= 1 {
		t.Errorf("design search: total %v, schedulable %v", res.TotalBandwidth, res.Analysis.Schedulable)
	}
}

// TestFacadeLinearize exercises platform linearisation through the
// façade.
func TestFacadeLinearize(t *testing.T) {
	srv := hsched.PeriodicServer{Q: 1, P: 4}
	p, err := hsched.Linearize(srv, 80, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Alpha-0.25) > 1e-9 || math.Abs(p.Delta-6) > 0.05 {
		t.Errorf("linearised %v, want ≈ (0.25, 6, 1.5)", p)
	}
}
