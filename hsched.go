// Package hsched is a hierarchical scheduling framework for
// component-based real-time systems: a from-scratch reproduction of
// Lorente, Lipari & Bini, "A Hierarchical Scheduling Model for
// Component-Based Real-Time Systems" (IPDPS 2006).
//
// The package is a façade over the implementation packages:
//
//   - Components (Class, Instance, Assembly) describe systems the way
//     the paper's Section 2 does — provided/required interfaces,
//     periodic and handler threads, synchronous RPC — and transform
//     into transaction sets (Assembly.Transactions).
//   - Systems (System, Transaction, Task) are the transaction model of
//     Section 2.4: task chains over abstract computing platforms.
//   - Platforms (Platform, PeriodicServer, TDMA, Pfair) carry the
//     supply model of Section 2.3: the (α, Δ, β) linearisation of the
//     minimum/maximum supply functions.
//   - Analyze / AnalyzeStatic run the schedulability analysis of
//     Section 3 (holistic dynamic-offset, approximate or exact). They
//     are thin wrappers over a package-default Service (see below), so
//     repeated identical queries are memoised.
//   - Simulate executes the system on concrete budget servers and
//     reports observed response times, for validation and exploration.
//   - Assign / HOPA / Audsley choose the local fixed priorities the
//     paper leaves to the component designer: closed-form monotonic
//     rankings plus two oracle-driven searches whose probes ride a
//     probe session (below).
//   - MinimizeBandwidth searches minimal platform parameters keeping
//     the system schedulable (the paper's Section 5 future work); its
//     feasibility oracle runs through an analysis service, so the
//     search's revisited parameter points are answered from the memo.
//
// # Architecture
//
// The analysis stack is layered; each layer is usable on its own:
//
//	façade (Analyze, AnalyzeContext, Assign, MinimizeBandwidth, …)
//	  └─ search layer (Assign/HOPA/Audsley, MinimizeBandwidth) —
//	     oracle-driven loops probing chains of one-edit-apart systems
//	       └─ ProbeSession (Service.NewSession) — pins the previous
//	          probe's result as the next probe's incremental seed;
//	          per-session SessionStats roll up into ServiceStats
//	          └─ Service — concurrency-safe front-end: engine pool
//	             sharded by System.Fingerprint, LRU verdict memo keyed
//	             by (fingerprint, normalised options) with
//	             cost-weighted eviction, singleflight dedup of
//	             concurrent identical queries, a delta-seed pool that
//	             re-analyses near-match queries incrementally,
//	             context-aware cancellation
//	              └─ Analyzer (analysis.Engine) — one goroutine's
//	                 reusable engine: transaction-keyed state slabs,
//	                 per-round parallel response computation, exact
//	                 sweeps streamed/pruned/chunk-parallel on a shared
//	                 worker budget, incremental AnalyzeFrom replay
//	                   └─ batch — deterministic parallel map primitives
//
// Which entry point do I use?
//
//	one-shot query, don't care        Analyze / AnalyzeStatic
//	cancellable one-shot query        AnalyzeContext / AnalyzeStaticContext
//	serving many queries (traffic)    NewService + Service.Analyze
//	tight loop, single goroutine,     NewAnalyzer + Analyzer.Analyze
//	  private mutable results
//	sweeping huge populations         NewAnalyzer inside batch.MapWorkers
//	choosing task priorities          Assign (policy rm/dm/hopa/audsley)
//	search loop of one-edit probes    Service.NewSession + ProbeSession
//	other processes or hosts          `hsched serve` (internal/httpd):
//	                                  the same service over HTTP/JSON,
//	                                  with ProbeSessions as per-client
//	                                  session tokens (remote probe
//	                                  chains send diff-shaped edits and
//	                                  ride the incremental path)
//
// Results returned by the service-backed entry points (Analyze,
// AnalyzeContext, Service.Analyze) may be shared with other callers —
// treat them as read-only. NewAnalyzer returns results that are
// exclusively the caller's.
//
// The quickstart example in examples/quickstart builds the paper's
// running sensor-fusion example end to end.
package hsched

import (
	"context"
	"sync"

	"hsched/internal/analysis"
	"hsched/internal/component"
	"hsched/internal/design"
	"hsched/internal/edf"
	"hsched/internal/model"
	"hsched/internal/network"
	"hsched/internal/platform"
	"hsched/internal/sched"
	"hsched/internal/server"
	"hsched/internal/service"
	"hsched/internal/sim"
	"hsched/internal/spec"
)

// Transaction-model types (Section 2.4).
type (
	// System is a set of transactions over abstract platforms.
	System = model.System
	// Transaction is a precedence chain of tasks released periodically.
	Transaction = model.Transaction
	// Task is one step of a transaction, mapped onto one platform.
	Task = model.Task
)

// Platform types (Section 2.3).
type (
	// Platform is the linear platform model (α, Δ, β).
	Platform = platform.Params
	// Supplier bounds the cycles a mechanism provides in any window.
	Supplier = platform.Supplier
	// PeriodicServer is the Q-every-P budget server of Figure 3.
	PeriodicServer = platform.PeriodicServer
	// TDMA is a static time partition.
	TDMA = platform.TDMA
	// Pfair is a quantum-based proportional-share server.
	Pfair = platform.Pfair
	// SupplyCurve is an arbitrary piecewise-linear supply specification.
	SupplyCurve = platform.Curve
)

// Component-model types (Sections 2.1-2.2).
type (
	// Class is a component class: interfaces plus threaded
	// implementation.
	Class = component.Class
	// Method is an interface method with its minimum inter-arrival
	// time.
	Method = component.Method
	// Thread is a periodic or handler thread of a component.
	Thread = component.Thread
	// Step is a task or synchronous call in a thread body.
	Step = component.Step
	// Instance is a class placed on a platform.
	Instance = component.Instance
	// Binding wires a required method to a provided one.
	Binding = component.Binding
	// Assembly is an integrated component system.
	Assembly = component.Assembly
	// MessageModel configures RPC messages over a network platform.
	MessageModel = component.MessageModel
)

// Analysis types (Section 3).
type (
	// AnalysisOptions tunes the schedulability analysis.
	AnalysisOptions = analysis.Options
	// AnalysisResult is the outcome: per-task bounds plus verdict.
	AnalysisResult = analysis.Result
	// TaskBounds are the per-task analysis outcome.
	TaskBounds = analysis.TaskResult
	// Analyzer is the reusable analysis engine: it owns all
	// per-analysis scratch state (transaction-keyed slabs of
	// interference rows, scenario and result buffers) and amortises it
	// across calls, running each fixed-point round as a staged
	// pipeline (interference construction → scenario enumeration →
	// parallel per-task responses → jitter propagation). Exact
	// scenario sweeps stream from a mixed-radix cursor and run true
	// branch-and-bound: admissible prefix bounds jump whole refuted
	// subtrees (AnalysisResult.ScenariosPruned / SubtreesPruned count
	// the savings) and large sweeps split across the workers a round
	// leaves idle. One Analyzer serves one goroutine; results are
	// identical for every worker count and every sweep toggle.
	// Analyzer.AnalyzeFrom re-analyses an edited system incrementally,
	// seeded by a previous result — including each sweep's critical
	// scenario, re-evaluated as the next sweep's incumbent floor, the
	// state that makes exact-oracle search chains tractable —
	// bit-identical to a cold Analyze, a fraction of the work.
	Analyzer = analysis.Engine
	// AnalysisDelta describes how much work an incremental re-analysis
	// skipped (AnalysisResult.Delta, non-nil on the delta path).
	AnalysisDelta = analysis.DeltaInfo
)

// Service types: the long-running, concurrency-safe analysis
// front-end (engine pool + verdict memo + in-flight dedup).
type (
	// Service is a sharded, memoising, concurrency-safe analysis
	// service; construct with NewService. Callers that decode
	// systems from bytes can collapse duplicate-heavy traffic to one
	// resident copy per distinct system via Service.Intern (the
	// fingerprint-keyed intern pool). See package internal/service
	// for the full semantics.
	Service = service.Service
	// ServiceOptions configures NewService: shard count, verdict-memo
	// capacity, intern-pool capacity, default analysis options.
	ServiceOptions = service.Options
	// ServiceStats is a snapshot of a service's counters (queries,
	// hits, misses, evictions, in-flight dedups, delta hits, the
	// task-rounds the incremental path saved, the exact scenarios
	// the sweep prune skipped, and the intern pool's hits, misses
	// and resident count).
	ServiceStats = service.Stats
	// SystemFingerprint is the canonical content hash of a System —
	// the service's cache and shard key, stable across JSON round
	// trips. It is the SHA-256 of the system's canonical wire bytes
	// (System.MarshalBinary), so a holder of the encoded form can
	// compute it without decoding.
	SystemFingerprint = model.Fingerprint
	// SystemDiff is the transaction-granular structural difference
	// between two systems (DiffSystems): unchanged / modified / added /
	// removed transactions plus platform-parameter changes. It is what
	// the incremental re-analysis path plans its replay from.
	SystemDiff = model.SystemDiff
	// ProbeSession is a pinned-seed probe handle on a Service
	// (Service.NewSession): it holds the caller's previous result as
	// the explicit seed of the next query, so search loops analysing
	// chains of one-edit-apart systems ride the incremental path
	// deterministically. The pinned result carries the previous
	// probe's exact-sweep state too — each task's critical scenario,
	// re-evaluated as the next sweep's branch-and-bound incumbent —
	// which is what keeps exact-oracle search chains tractable. The
	// priority-assignment searches and the bandwidth minimisation
	// probe through one.
	ProbeSession = service.Session
	// SessionStats is a snapshot of one probe session's counters
	// (probes, memo hits, executed analyses, delta hits, rounds
	// saved).
	SessionStats = service.SessionStats
)

// DiffSystems structurally diffs two systems at transaction
// granularity, matching transactions by their analysis fingerprint
// (names and holistic-derived offsets ignored). Reorderings diff as
// unchanged; SystemDiff.InOrder reports whether the matching preserved
// relative order (the precondition for incremental replay).
func DiffSystems(old, new *System) *SystemDiff {
	return model.Diff(old, new)
}

// Simulation types.
type (
	// SimConfig tunes a simulation run.
	SimConfig = sim.Config
	// SimResult is the observed outcome of a simulation.
	SimResult = sim.Result
	// Server is a runtime platform realisation consumed by Simulate.
	Server = server.Server
	// LocalPolicy selects a platform's local scheduler in simulations.
	LocalPolicy = sim.Policy
)

// Local scheduling policies for SimConfig.Policies.
const (
	// FixedPriorityPolicy is the paper's baseline local scheduler.
	FixedPriorityPolicy = sim.FixedPriority
	// EDFPolicy schedules by earliest absolute deadline.
	EDFPolicy = sim.EDF
)

// Local-EDF admission (the extension sketched in Section 2.1).
type (
	// EDFTask is one sporadic task of an EDF-scheduled component.
	EDFTask = edf.Task
	// EDFResult is the outcome of the demand/supply admission test.
	EDFResult = edf.Result
)

// EDFSchedulable tests a set of independent sporadic tasks under local
// EDF on a platform: schedulable iff the demand bound function never
// exceeds the platform's minimum supply.
func EDFSchedulable(tasks []EDFTask, p Supplier) (*EDFResult, error) {
	return edf.Schedulable(tasks, p)
}

// EDFMinimalRate searches the minimal platform bandwidth keeping a
// task set EDF-schedulable within a one-parameter platform family.
func EDFMinimalRate(tasks []EDFTask, family func(alpha float64) Supplier, tol float64) (float64, error) {
	return edf.MinimalRate(tasks, family, tol)
}

// Re-exported constructors and helpers.
var (
	// DedicatedPlatform returns (α, Δ, β) = (1, 0, 0).
	DedicatedPlatform = platform.Dedicated
	// Linearize numerically extracts (α, Δ, β) from any Supplier.
	Linearize = platform.Linearize
	// ComposePlatforms stacks a reservation on a reservation (nested
	// hierarchies): rates multiply, the inner delay dilates by the
	// outer rate.
	ComposePlatforms = platform.Compose
	// TaskStep builds a task step of a thread body.
	TaskStep = component.Task
	// TaskStepPrio builds a task step with a priority override.
	TaskStepPrio = component.TaskPrio
	// CallStep builds a synchronous call step of a thread body.
	CallStep = component.Call
	// LoadSystem reads a JSON system specification.
	LoadSystem = spec.Load
	// SaveSystem writes a JSON system specification.
	SaveSystem = spec.Save
)

// Thread and step kinds.
const (
	// PeriodicThread marks a time-triggered thread.
	PeriodicThread = component.Periodic
	// HandlerThread marks an event-triggered thread realising a
	// provided method.
	HandlerThread = component.Handler
)

// Priority-assignment types (package sched): the paper leaves local
// fixed priorities to the component designer; these close the gap.
type (
	// AssignPolicy names a priority-assignment policy for Assign:
	// AssignRM, AssignDM, AssignHOPA or AssignAudsley.
	AssignPolicy = sched.Policy
	// AssignOptions tunes Assign (oracle options, HOPA iterations,
	// shared analysis service).
	AssignOptions = sched.AssignOptions
	// HOPAOptions tunes HOPA / HOPAContext.
	HOPAOptions = sched.HOPAOptions
	// AudsleyOptions tunes AudsleyContext.
	AudsleyOptions = sched.AudsleyOptions
)

// The priority-assignment policies.
const (
	// AssignRM ranks tasks by transaction period (rate monotonic).
	AssignRM = sched.PolicyRM
	// AssignDM ranks tasks by end-to-end deadline (deadline
	// monotonic).
	AssignDM = sched.PolicyDM
	// AssignHOPA searches by iterative deadline distribution (HOPA).
	AssignHOPA = sched.PolicyHOPA
	// AssignAudsley searches bottom-up per platform (Audsley-style
	// optimal priority assignment).
	AssignAudsley = sched.PolicyAudsley
)

// Assign applies one priority-assignment policy to sys, overwriting
// its task priorities, and returns the holistic analysis of the
// installed assignment plus whether it is schedulable. The search
// policies (AssignHOPA, AssignAudsley) probe the analysis through a
// ProbeSession on AssignOptions.Service — each probe is one priority
// move from the previous one, so it re-analyses incrementally and
// revisited assignments come from the verdict memo. Treat the result
// as read-only.
func Assign(ctx context.Context, sys *System, policy AssignPolicy, opt AssignOptions) (*AnalysisResult, bool, error) {
	return sched.Assign(ctx, sys, policy, opt)
}

// AssignPolicies lists the selectable priority-assignment policies.
func AssignPolicies() []AssignPolicy { return sched.Policies() }

// RateMonotonic and DeadlineMonotonic install the closed-form
// monotonic rankings in place (no analysis is run; use Assign for an
// analysed verdict).
var (
	// RateMonotonic ranks every task by its transaction's period.
	RateMonotonic = sched.RateMonotonic
	// DeadlineMonotonic ranks every task by its transaction's
	// end-to-end deadline.
	DeadlineMonotonic = sched.DeadlineMonotonic
)

// HOPA searches a priority assignment by iterative deadline
// distribution against the holistic analysis and installs the best
// assignment found; see package sched for the search's shape.
func HOPA(sys *System, opt HOPAOptions) (*AnalysisResult, error) {
	return sched.HOPA(sys, opt)
}

// HOPAContext is HOPA with cancellation, polled between oracle probes
// and inside the analyses.
func HOPAContext(ctx context.Context, sys *System, opt HOPAOptions) (*AnalysisResult, error) {
	return sched.HOPAContext(ctx, sys, opt)
}

// Audsley performs Audsley-style optimal priority assignment per
// platform with the holistic analysis as its oracle, installs the
// found assignment, and reports whether it is schedulable.
func Audsley(sys *System, opt AnalysisOptions) (*AnalysisResult, bool, error) {
	return sched.Audsley(sys, opt)
}

// AudsleyContext is Audsley with cancellation and an explicit oracle
// service (AudsleyOptions.Service).
func AudsleyContext(ctx context.Context, sys *System, opt AudsleyOptions) (*AnalysisResult, bool, error) {
	return sched.AudsleyContext(ctx, sys, opt)
}

// Network and design-search types.
type (
	// Bus is a shared communication link modelled as a platform.
	Bus = network.Bus
	// ServerFamily maps a bandwidth α to full platform parameters,
	// used by MinimizeBandwidth.
	ServerFamily = design.Family
	// DesignOptions tunes MinimizeBandwidth.
	DesignOptions = design.Options
	// DesignResult reports the minimised bandwidths.
	DesignResult = design.Result
)

// Design-search families and network helpers.
var (
	// PollingFamily is the periodic-server family of a fixed period.
	PollingFamily = design.PollingFamily
	// TDMAFamily is the static-partition family of a fixed frame.
	TDMAFamily = design.TDMAFamily
	// PfairFamily is the proportional-share family of a fixed quantum.
	PfairFamily = design.PfairFamily
	// ApplyBusBlocking adds a bus's non-preemptive blocking to every
	// message task on the network platform.
	ApplyBusBlocking = network.ApplyBlocking
)

// NewAnalyzer returns a reusable analysis engine with the given
// options. Construct one per goroutine and call its Analyze /
// AnalyzeStatic methods across many systems: consecutive analyses of
// same-shaped systems reuse every cache and buffer, which is what the
// batch sweeps rely on for throughput. Unlike the service-backed
// entry points, every result is a private copy the caller may mutate.
func NewAnalyzer(opt AnalysisOptions) *Analyzer {
	return analysis.NewEngine(opt)
}

// NewService returns a concurrency-safe analysis service: a pool of
// resident engines sharded by system fingerprint, an LRU memo of
// verdicts keyed by (fingerprint, normalised options), and
// singleflight deduplication of concurrent identical queries. Hold
// one Service for the lifetime of a serving process and query it from
// any number of goroutines.
func NewService(opt ServiceOptions) *Service {
	return service.New(opt)
}

// defaultService backs the package-level Analyze / AnalyzeStatic free
// functions: a lazily-constructed process-wide service with default
// options, so existing one-shot callers transparently gain engine
// reuse and verdict memoisation.
var (
	defaultServiceOnce sync.Once
	defaultService     *Service
)

// DefaultService returns the process-wide analysis service the
// package-level Analyze and AnalyzeStatic use. Use it to read cache
// statistics for the free-function traffic, to share the same memo
// with explicit Service-style calls, or to release the memory its
// memo and resident engines pin (Service.Reset) in long-lived
// processes that analyse large disjoint system populations.
func DefaultService() *Service {
	defaultServiceOnce.Do(func() { defaultService = service.New(service.Options{}) })
	return defaultService
}

// Analyze runs the holistic dynamic-offset schedulability analysis of
// Section 3.2: offsets and jitters of non-initial tasks are derived
// from predecessor response times and iterated to a fixed point. It is
// a thin wrapper over DefaultService, so repeated identical queries
// are answered from the verdict memo; treat the returned result as
// read-only (it may be shared), and use NewAnalyzer for a private
// mutable copy.
func Analyze(sys *System, opt AnalysisOptions) (*AnalysisResult, error) {
	return DefaultService().AnalyzeOptions(context.Background(), sys, opt)
}

// AnalyzeContext is Analyze with cancellation: the analysis polls ctx
// between holistic rounds, between per-task response computations and
// inside large exact scenario sweeps, and returns an error wrapping
// ctx.Err() on abort.
func AnalyzeContext(ctx context.Context, sys *System, opt AnalysisOptions) (*AnalysisResult, error) {
	return DefaultService().AnalyzeOptions(ctx, sys, opt)
}

// AnalyzeStatic runs one pass of the static-offset analysis of
// Section 3.1 with the offsets and jitters stored in the system. Like
// Analyze it is served by DefaultService; treat the result as
// read-only.
func AnalyzeStatic(sys *System, opt AnalysisOptions) (*AnalysisResult, error) {
	return DefaultService().AnalyzeStaticOptions(context.Background(), sys, opt)
}

// AnalyzeStaticContext is AnalyzeStatic with cancellation.
func AnalyzeStaticContext(ctx context.Context, sys *System, opt AnalysisOptions) (*AnalysisResult, error) {
	return DefaultService().AnalyzeStaticOptions(ctx, sys, opt)
}

// Simulate executes the system on one concrete server per platform.
func Simulate(sys *System, servers []Server, cfg SimConfig) (*SimResult, error) {
	return sim.Run(sys, servers, cfg)
}

// ServerFor builds a runtime server realising the given platform
// parameters (a polling server with the tightest compatible period, a
// proportional-share server for Δ = 0, or a dedicated processor).
func ServerFor(p Platform, phase float64) (Server, error) {
	return server.ForPlatform(p, phase)
}

// MinimizeBandwidth searches per-platform bandwidths minimising total
// bandwidth subject to schedulability, within one server family per
// platform (the paper's Section 5 future work). See package design for
// the families. The feasibility oracle runs through an analysis
// service (DesignOptions.Service, or a private one), whose verdict
// memo answers the search's revisited parameter points.
func MinimizeBandwidth(sys *System, families []ServerFamily, opt DesignOptions) (*DesignResult, error) {
	return design.Minimize(sys, families, opt)
}

// MinimizeBandwidthContext is MinimizeBandwidth with cancellation.
func MinimizeBandwidthContext(ctx context.Context, sys *System, families []ServerFamily, opt DesignOptions) (*DesignResult, error) {
	return design.MinimizeContext(ctx, sys, families, opt)
}
