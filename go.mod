module hsched

go 1.24
